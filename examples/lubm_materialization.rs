//! End-to-end materialization of a LUBM-like university workload under
//! RDFS-Plus — a miniature of the paper's Table 3 experiment, comparing
//! Inferray against both baselines on the same generated dataset.
//!
//! ```text
//! cargo run --release --example lubm_materialization [triples]
//! ```

use inferray::baselines::{HashJoinReasoner, NaiveIterativeReasoner};
use inferray::datasets::LubmGenerator;
use inferray::parser::load_triples;
use inferray::{Fragment, InferrayReasoner, Materializer, TripleStore};

fn run(name: &str, engine: &mut dyn Materializer, store: &TripleStore) -> usize {
    let mut store = store.clone();
    let stats = engine.materialize(&mut store);
    println!(
        "{name:<16} {:>10?}   {:>8} input   {:>8} output   {:>8} inferred   {} iterations",
        stats.duration,
        stats.input_triples,
        stats.output_triples,
        stats.inferred_triples(),
        stats.iterations,
    );
    stats.output_triples
}

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);

    println!("Generating a LUBM-like dataset of ~{target} triples …");
    let dataset = LubmGenerator::new(target).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("valid dataset");
    println!(
        "{} distinct triples over {} properties.\n",
        loaded.store.len(),
        loaded.store.table_count()
    );

    println!("Materializing the RDFS-Plus fragment:");
    let a = run(
        "inferray",
        &mut InferrayReasoner::new(Fragment::RdfsPlus),
        &loaded.store,
    );
    let b = run(
        "hash-join",
        &mut HashJoinReasoner::new(Fragment::RdfsPlus),
        &loaded.store,
    );
    let c = run(
        "naive-iterative",
        &mut NaiveIterativeReasoner::new(Fragment::RdfsPlus),
        &loaded.store,
    );

    assert_eq!(a, b, "engines must agree on the materialization size");
    assert_eq!(b, c, "engines must agree on the materialization size");
    println!("\nAll three engines agree on the materialization ({a} triples).");
}
