//! RDFS-Plus identity resolution with `owl:sameAs`, inverse and functional
//! properties — the constructs the paper's RDFS-Plus benchmark (Table 3)
//! exercises.
//!
//! Two data sources describe the same book author under different IRIs; an
//! inverse-functional identifier (the ORCID) lets the reasoner discover the
//! equality, and the sameAs substitution rules then merge everything known
//! about either IRI.
//!
//! ```text
//! cargo run --example rdfs_plus_sameas
//! ```

use inferray::core::api::reason_turtle;
use inferray::{Fragment, Triple};

const DATA: &str = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix ex:   <http://example.org/> .

# Schema
ex:orcid    a owl:InverseFunctionalProperty .
ex:wrote    owl:inverseOf ex:writtenBy ;
            rdfs:domain ex:Author .
ex:Novelist rdfs:subClassOf ex:Author .

# Source A
ex:J_Doe    ex:orcid "0000-0001-2345-6789" ;
            a ex:Novelist ;
            ex:wrote ex:TheBook .

# Source B (same person, different IRI)
ex:JaneDoe  ex:orcid "0000-0001-2345-6789" ;
            ex:nationality ex:France .
"#;

fn main() {
    let result = reason_turtle(DATA, Fragment::RdfsPlus).expect("valid turtle");
    println!(
        "Materialized {} triples ({} inferred) in {:?}.",
        result.graph.len(),
        result.stats.inferred_triples(),
        result.stats.duration
    );

    let ex = |local: &str| format!("http://example.org/{local}");
    let owl_same_as = "http://www.w3.org/2002/07/owl#sameAs";
    let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

    // The shared ORCID makes the two IRIs equal…
    let same = Triple::iris(ex("J_Doe"), owl_same_as, ex("JaneDoe"));
    assert!(
        result.graph.contains(&same),
        "PRP-IFP should identify the author"
    );
    println!("✓ {same}");

    // …so facts flow across the alias in both directions…
    let nationality = Triple::iris(ex("J_Doe"), ex("nationality"), ex("France"));
    assert!(
        result.graph.contains(&nationality),
        "EQ-REP-S should copy the nationality"
    );
    println!("✓ {nationality}");

    // …the inverse property links the book back to both IRIs…
    let written_by = Triple::iris(ex("TheBook"), ex("writtenBy"), ex("JaneDoe"));
    assert!(
        result.graph.contains(&written_by),
        "PRP-INV + EQ-REP should apply"
    );
    println!("✓ {written_by}");

    // …and the class hierarchy + domain typing still applies.
    let typed = Triple::iris(ex("JaneDoe"), rdf_type, ex("Author"));
    assert!(
        result.graph.contains(&typed),
        "CAX-SCO / PRP-DOM should type the alias"
    );
    println!("✓ {typed}");

    println!("\nEverything known about either IRI:");
    for triple in result.graph.iter().filter(|t| {
        t.subject == inferray::Term::iri(ex("JaneDoe"))
            || t.subject == inferray::Term::iri(ex("J_Doe"))
    }) {
        println!("  {triple}");
    }
}
