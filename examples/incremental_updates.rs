//! Incremental maintenance of a materialized store.
//!
//! The paper's introduction notes that forward chaining is "well suited to
//! frequently changing data" only with care, since deletions force full
//! re-materialization — but *additions* do not: the fixed point can be
//! restarted with the newly asserted triples as the semi-naive frontier.
//! This example materializes a small ontology once, then streams three
//! batches of updates through [`InferrayReasoner::materialize_delta`],
//! showing that each batch only pays for what it newly derives, and finally
//! checks the result equals a from-scratch materialization.
//!
//! ```text
//! cargo run --example incremental_updates
//! ```

use inferray::core::{InferrayReasoner, Materializer};
use inferray::dictionary::wellknown;
use inferray::rules::Fragment;
use inferray::store::TripleStore;
use inferray::IdTriple;
use std::collections::BTreeSet;

// A tiny id universe for the example (resources live above 2³²).
const EMPLOYEE: u64 = 6_000_000_000;
const MANAGER: u64 = 6_000_000_001;
const PERSON: u64 = 6_000_000_002;
const AGENT: u64 = 6_000_000_003;
const ADA: u64 = 6_000_000_010;
const GRACE: u64 = 6_000_000_011;
const EDSGER: u64 = 6_000_000_012;

fn main() {
    let works_for = inferray::model::ids::nth_property_id(100);
    let manages = inferray::model::ids::nth_property_id(101);

    // 1. Initial load: a small schema plus one employee.
    let initial = vec![
        IdTriple::new(MANAGER, wellknown::RDFS_SUB_CLASS_OF, EMPLOYEE),
        IdTriple::new(EMPLOYEE, wellknown::RDFS_SUB_CLASS_OF, PERSON),
        IdTriple::new(works_for, wellknown::RDFS_DOMAIN, EMPLOYEE),
        IdTriple::new(manages, wellknown::RDFS_SUB_PROPERTY_OF, works_for),
        IdTriple::new(ADA, wellknown::RDF_TYPE, EMPLOYEE),
    ];
    let mut store = TripleStore::from_triples(initial.iter().copied());
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    let stats = reasoner.materialize(&mut store);
    println!(
        "Initial materialization: {} asserted -> {} total ({} inferred, {} iterations)",
        stats.input_triples,
        stats.output_triples,
        stats.inferred_triples(),
        stats.iterations
    );

    // 2. Stream updates. Each delta is asserted and the closure is repaired
    //    incrementally — no full re-materialization.
    let deltas: Vec<(&str, Vec<IdTriple>)> = vec![
        (
            "Grace joins as a manager",
            vec![IdTriple::new(GRACE, wellknown::RDF_TYPE, MANAGER)],
        ),
        (
            "Edsger is recorded as managed by Grace",
            vec![IdTriple::new(GRACE, manages, EDSGER)],
        ),
        (
            "The schema grows: every person is an agent",
            vec![IdTriple::new(PERSON, wellknown::RDFS_SUB_CLASS_OF, AGENT)],
        ),
    ];

    let mut all_asserted = initial;
    for (label, delta) in &deltas {
        all_asserted.extend(delta.iter().copied());
        let before = store.len();
        let stats = reasoner.materialize_delta(&mut store, delta.iter().copied());
        println!(
            "Delta \"{label}\": +{} asserted, +{} derived, {} iterations, store now {} triples",
            delta.len(),
            store.len() - before - delta.len(),
            stats.iterations,
            store.len()
        );
    }

    // Spot-check a few conclusions that required combining old and new data.
    assert!(store.contains(&IdTriple::new(GRACE, wellknown::RDF_TYPE, PERSON)));
    assert!(store.contains(&IdTriple::new(GRACE, works_for, EDSGER))); // manages ⊑ worksFor
    assert!(store.contains(&IdTriple::new(GRACE, wellknown::RDF_TYPE, AGENT)));
    assert!(store.contains(&IdTriple::new(ADA, wellknown::RDF_TYPE, AGENT)));

    // 3. The incremental result is identical to materializing everything at
    //    once.
    let mut batch = TripleStore::from_triples(all_asserted);
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut batch);
    let incremental: BTreeSet<IdTriple> = store.iter_triples().collect();
    let from_scratch: BTreeSet<IdTriple> = batch.iter_triples().collect();
    assert_eq!(incremental, from_scratch);
    println!(
        "\nIncremental and from-scratch materializations agree ({} triples).",
        incremental.len()
    );
}
